(** Static network topologies (Fig. 6 and variants).

    A topology is an undirected connected graph over nodes [0 .. n-1];
    replicas synchronize only with their graph neighbors.  The paper's
    experiments use a 15-node binary {!tree} (an acyclic, optimal
    propagation scenario) and a 15-node degree-4 {!partial_mesh} (whose
    link redundancy exercises the RR optimization). *)

type t = { name : string; n : int; adj : int list array }

let name t = t.name
let size t = t.n

let neighbors t i =
  if i < 0 || i >= t.n then invalid_arg "Topology.neighbors: bad node id";
  t.adj.(i)

let degree t i = List.length (neighbors t i)

(* Normalize an edge list into a validated topology. *)
let of_edges ~name ~n edges =
  if n <= 0 then invalid_arg "Topology.of_edges: empty topology";
  let adj = Array.make n [] in
  let add i j =
    if i = j then invalid_arg "Topology.of_edges: self loop";
    if i < 0 || i >= n || j < 0 || j >= n then
      invalid_arg "Topology.of_edges: node out of range";
    if not (List.mem j adj.(i)) then adj.(i) <- j :: adj.(i)
  in
  List.iter
    (fun (i, j) ->
      add i j;
      add j i)
    edges;
  let t = { name; n; adj = Array.map (List.sort Int.compare) adj } in
  (* Connectivity check: BFS from node 0 must reach everyone. *)
  let visited = Array.make n false in
  let rec bfs = function
    | [] -> ()
    | i :: rest ->
        if visited.(i) then bfs rest
        else begin
          visited.(i) <- true;
          bfs (List.rev_append t.adj.(i) rest)
        end
  in
  bfs [ 0 ];
  if not (Array.for_all Fun.id visited) then
    invalid_arg "Topology.of_edges: disconnected topology";
  t

let edges t =
  let out = ref [] in
  Array.iteri
    (fun i js -> List.iter (fun j -> if i < j then out := (i, j) :: !out) js)
    t.adj;
  List.rev !out

(** Path graph [0 - 1 - ... - n-1]. *)
let line n =
  of_edges ~name:"line" ~n (List.init (n - 1) (fun i -> (i, i + 1)))

(** Cycle graph. *)
let ring n =
  if n < 3 then invalid_arg "Topology.ring: need at least 3 nodes";
  of_edges ~name:"ring" ~n
    (List.init n (fun i -> (i, (i + 1) mod n)))

(** Node 0 connected to everyone else. *)
let star n =
  if n < 2 then invalid_arg "Topology.star: need at least 2 nodes";
  of_edges ~name:"star" ~n (List.init (n - 1) (fun i -> (0, i + 1)))

(** Complete graph (all-to-all connectivity). *)
let full_mesh n =
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      edges := (i, j) :: !edges
    done
  done;
  of_edges ~name:"full-mesh" ~n !edges

(** Complete binary tree laid out in heap order: node [i]'s children are
    [2i+1] and [2i+2].  With [n = 15] this is exactly the paper's tree
    topology: the root has 2 neighbors, internal nodes 3, leaves 1. *)
let tree n =
  let edges = ref [] in
  for i = 1 to n - 1 do
    edges := ((i - 1) / 2, i) :: !edges
  done;
  of_edges ~name:"tree" ~n !edges

(** Circulant graph: node [i] is connected to [i ± o] for each offset
    [o]. *)
let circulant ~offsets n =
  let edges = ref [] in
  List.iter
    (fun o ->
      if o <= 0 || o >= n then invalid_arg "Topology.circulant: bad offset";
      for i = 0 to n - 1 do
        edges := (i, (i + o) mod n) :: !edges
      done)
    offsets;
  of_edges ~name:"circulant" ~n !edges

(** The paper's partial mesh: every node has 4 neighbors and the graph is
    rich in cycles (redundant links, desirable for fault tolerance).  We
    use the circulant graph with offsets {1, 2}, which is 4-regular for
    [n ≥ 5]. *)
let partial_mesh n =
  if n < 5 then invalid_arg "Topology.partial_mesh: need at least 5 nodes";
  { (circulant ~offsets:[ 1; 2 ] n) with name = "mesh" }

(** 2-D grid of [rows × cols] nodes (extension topology). *)
let grid ~rows ~cols =
  let n = rows * cols in
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (id r c, id r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (id r c, id (r + 1) c) :: !edges
    done
  done;
  of_edges ~name:"grid" ~n !edges

(** True when the graph contains no cycle (|E| = n − 1 given
    connectivity), i.e. BP alone suffices for optimal propagation. *)
let is_acyclic t = List.length (edges t) = t.n - 1

let pp ppf t =
  Format.fprintf ppf "%s(n=%d, edges=%d)" t.name t.n (List.length (edges t))

(** Name → builder dispatch shared by the CLI and the benches.  Accepts
    the canonical names plus the aliases the constructors print
    ("full-mesh", "partial-mesh"). *)
let of_name name n =
  match name with
  | "tree" -> tree n
  | "mesh" | "partial-mesh" -> partial_mesh n
  | "ring" -> ring n
  | "line" -> line n
  | "star" -> star n
  | "full" | "full-mesh" -> full_mesh n
  | other ->
      invalid_arg
        (Printf.sprintf
           "unknown topology %S (known: tree, mesh, ring, line, star, full)"
           other)
