(** Versioned length-prefixed framing.

    Every frame on the wire is

    {v
      +-------+---------+------+----------------+---------+
      | magic | version | kind | payload length | payload |
      | 0xC5  | 1 byte  | 1 B  | varint         | n bytes |
      +-------+---------+------+----------------+---------+
    v}

    The magic byte rejects cross-talk from non-crdtsync peers early;
    the version byte is bumped on any incompatible payload-encoding
    change (decoders reject versions they do not know rather than
    guessing); the kind byte dispatches at the runtime layer (e.g.
    handshake vs. protocol message) without decoding the payload.
    Payload lengths are capped ({!default_max_payload}) so a corrupt
    or hostile length prefix cannot trigger a giant allocation. *)

let magic = 0xC5
let version = 1

(** 16 MiB — far above any message the protocols emit, far below
    anything that could hurt. *)
let default_max_payload = 16 * 1024 * 1024

(** Exact on-the-wire size of a frame holding [payload_len] bytes. *)
let framed_size ~payload_len = 3 + Codec.varint_size payload_len + payload_len

let add_header buf ~kind ~payload_len =
  if kind < 0 || kind > 0xff then invalid_arg "Frame.encode: bad kind";
  Buffer.add_char buf (Char.chr magic);
  Buffer.add_char buf (Char.chr version);
  Buffer.add_char buf (Char.chr kind);
  Codec.write_varint buf payload_len

(** Append a complete frame holding [payload] to [buf].  The batched
    send path coalesces every frame bound for one peer into a single
    outbound buffer with this — the bytes are exactly what {!encode}
    produces, only their destination differs. *)
let encode_into buf ~kind payload =
  add_header buf ~kind ~payload_len:(String.length payload);
  Buffer.add_string buf payload

(** Append a frame whose payload is [codec]-encoded [v], with zero
    intermediate strings: the payload is staged in [scratch] (cleared
    first; ownership stays with the caller, who reuses it across
    calls — the encode-buffer-reuse half of the batched path) only
    because the varint length prefix must precede bytes whose count is
    not known until they are written. *)
let encode_value_into ~scratch buf ~kind codec v =
  Buffer.clear scratch;
  Codec.encode_into scratch codec v;
  add_header buf ~kind ~payload_len:(Buffer.length scratch);
  Buffer.add_buffer buf scratch

let encode ~kind payload =
  let buf = Buffer.create (framed_size ~payload_len:(String.length payload)) in
  encode_into buf ~kind payload;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Incremental decoding (for byte streams)                             *)

(** A feed accumulates stream chunks and yields complete frames.  Any
    error is sticky: a framing violation means the stream is garbage
    from that point on, so the connection should be dropped. *)
type feed = {
  mutable pending : string;
  max_payload : int;
  mutable failed : Codec.error option;
}

let feed ?(max_payload = default_max_payload) () =
  { pending = ""; max_payload; failed = None }

let push t chunk =
  if t.failed = None && String.length chunk > 0 then
    t.pending <-
      (if String.length t.pending = 0 then chunk else t.pending ^ chunk)

let pending_bytes t = String.length t.pending

(** [pop t] is [Ok (Some (kind, payload))] when a complete frame is
    buffered, [Ok None] when more input is needed, and [Error _] when
    the stream is not a valid frame sequence (sticky). *)
let pop t =
  match t.failed with
  | Some e -> Error e
  | None -> (
      let fail e =
        t.failed <- Some e;
        Error e
      in
      let r = Codec.reader t.pending in
      if Codec.remaining r < 3 then Ok None
      else
        let b0 = Char.code t.pending.[0] in
        let b1 = Char.code t.pending.[1] in
        if b0 <> magic then
          fail (Codec.Malformed (Printf.sprintf "bad frame magic 0x%02x" b0))
        else if b1 <> version then
          fail
            (Codec.Malformed
               (Printf.sprintf "unsupported wire version %d (expected %d)" b1
                  version))
        else begin
          let kind = Char.code t.pending.[2] in
          r.Codec.pos <- 3;
          match Codec.read_varint r with
          | Error Codec.Truncated -> Ok None (* length prefix incomplete *)
          | Error e -> fail e
          | Ok len ->
              if len < 0 || len > t.max_payload then
                fail
                  (Codec.Malformed
                     (Printf.sprintf "frame payload length %d exceeds cap" len))
              else if Codec.remaining r < len then Ok None
              else begin
                let payload = String.sub t.pending r.Codec.pos len in
                let consumed = r.Codec.pos + len in
                t.pending <-
                  String.sub t.pending consumed
                    (String.length t.pending - consumed);
                Ok (Some (kind, payload))
              end
        end)

(** Decode a single complete frame from a string (no partial input). *)
let decode s =
  let t = feed () in
  push t s;
  match pop t with
  | Error _ as e -> e
  | Ok None -> Error Codec.Truncated
  | Ok (Some (kind, payload)) ->
      if String.length t.pending = 0 then Ok (kind, payload)
      else Error (Codec.Malformed "trailing bytes after frame")
