(** Combinator-based binary codecs.

    A ['a t] bundles a writer (append the binary form of a value to a
    [Buffer.t]) with a {e total} reader: decoding never raises, it
    returns [Error] on truncated or corrupt input.  Codecs for the
    lattice composition catalogue are built from the combinators here,
    so every CRDT obtained by composition gets [encode]/[decode] for
    free (see DESIGN.md §6 for the wire-format specification).

    Totality contract: readers must (a) never raise on any input, and
    (b) never allocate proportionally to a {e claimed} length — every
    length/count prefix is validated against the bytes actually
    remaining before anything is allocated.

    Size contract: every codec used as a collection element consumes at
    least one byte per value, which is what makes the
    count-versus-remaining validation in {!list} sound.  The only
    zero-byte codec is {!unit}, intended solely for payload-less
    {!union} cases (where the tag byte provides the minimum). *)

type error =
  | Truncated  (** Input ended before the value was complete. *)
  | Malformed of string
      (** Structurally invalid input (bad tag, oversized varint,
          length prefix exceeding the remaining bytes, …). *)

let pp_error ppf = function
  | Truncated -> Format.fprintf ppf "truncated input"
  | Malformed msg -> Format.fprintf ppf "malformed input: %s" msg

let error_to_string e = Format.asprintf "%a" pp_error e

(** A bounded cursor over an immutable string.  [pos] advances as
    values are read; readers may never look past [limit]. *)
type reader = { src : string; mutable pos : int; limit : int }

let reader ?(pos = 0) ?len src =
  let limit =
    match len with Some l -> pos + l | None -> String.length src
  in
  if pos < 0 || limit > String.length src || pos > limit then
    invalid_arg "Codec.reader: window out of bounds";
  { src; pos; limit }

let remaining r = r.limit - r.pos

type 'a t = {
  write : Buffer.t -> 'a -> unit;
  read : reader -> ('a, error) result;
}

let write = fun c buf x -> c.write buf x
let read = fun c r -> c.read r

(* ------------------------------------------------------------------ *)
(* Primitive readers                                                   *)

let read_byte r =
  if r.pos >= r.limit then Error Truncated
  else begin
    let b = Char.code (String.unsafe_get r.src r.pos) in
    r.pos <- r.pos + 1;
    Ok b
  end

(* ------------------------------------------------------------------ *)
(* Varints                                                             *)

(* Unsigned LEB128 over the 63-bit native-int pattern: 7 value bits
   per byte, least-significant group first, high bit = continuation.
   [lsr] treats the int as its unsigned bit pattern, so every OCaml
   int — including negative patterns produced by zigzag — round-trips
   in at most 9 bytes (9 × 7 = 63 bits). *)
let write_varint buf n =
  let n = ref n in
  let continue = ref true in
  while !continue do
    let b = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char buf (Char.unsafe_chr b);
      continue := false
    end
    else Buffer.add_char buf (Char.unsafe_chr (b lor 0x80))
  done

let read_varint r =
  let rec go acc shift =
    match read_byte r with
    | Error _ as e -> e
    | Ok b ->
        let acc = acc lor ((b land 0x7f) lsl shift) in
        if b land 0x80 = 0 then Ok acc
        else if shift >= 56 then
          (* A 10th group would exceed 63 bits. *)
          Error (Malformed "varint longer than 9 bytes")
        else go acc (shift + 7)
  in
  go 0 0

let varint_size n =
  let n = ref (n lsr 7) and size = ref 1 in
  while !n <> 0 do
    incr size;
    n := !n lsr 7
  done;
  !size

let varint = { write = write_varint; read = read_varint }

(* Zigzag maps small-magnitude signed ints to small unsigned patterns:
   0 → 0, -1 → 1, 1 → 2, -2 → 3, … *)
let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag z = (z lsr 1) lxor (- (z land 1))

let int =
  {
    write = (fun buf n -> write_varint buf (zigzag n));
    read = (fun r -> Result.map unzigzag (read_varint r));
  }

(* ------------------------------------------------------------------ *)
(* Other primitives                                                    *)

let u8 =
  {
    write =
      (fun buf n ->
        if n < 0 || n > 0xff then invalid_arg "Codec.u8: out of range";
        Buffer.add_char buf (Char.unsafe_chr n));
    read = read_byte;
  }

let bool =
  {
    write = (fun buf b -> Buffer.add_char buf (if b then '\001' else '\000'));
    read =
      (fun r ->
        match read_byte r with
        | Error _ as e -> e
        | Ok 0 -> Ok false
        | Ok 1 -> Ok true
        | Ok b -> Error (Malformed (Printf.sprintf "bad bool byte %d" b)));
  }

let unit = { write = (fun _ () -> ()); read = (fun _ -> Ok ()) }

let string =
  {
    write =
      (fun buf s ->
        write_varint buf (String.length s);
        Buffer.add_string buf s);
    read =
      (fun r ->
        match read_varint r with
        | Error _ as e -> e
        | Ok n ->
            if n < 0 || n > remaining r then
              Error (Malformed "string length exceeds remaining input")
            else begin
              let s = String.sub r.src r.pos n in
              r.pos <- r.pos + n;
              Ok s
            end);
  }

(* ------------------------------------------------------------------ *)
(* Combinators                                                         *)

let conv proj inj c =
  {
    write = (fun buf x -> c.write buf (proj x));
    read = (fun r -> Result.map inj (c.read r));
  }

let conv_partial proj inj c =
  {
    write = (fun buf x -> c.write buf (proj x));
    read =
      (fun r -> match c.read r with Ok b -> inj b | Error _ as e -> e);
  }

let pair ca cb =
  {
    write =
      (fun buf (a, b) ->
        ca.write buf a;
        cb.write buf b);
    read =
      (fun r ->
        match ca.read r with
        | Error _ as e -> e
        | Ok a -> (
            match cb.read r with Error _ as e -> e | Ok b -> Ok (a, b)));
  }

let triple ca cb cc =
  conv
    (fun (a, b, c) -> (a, (b, c)))
    (fun (a, (b, c)) -> (a, b, c))
    (pair ca (pair cb cc))

let option c =
  {
    write =
      (fun buf -> function
        | None -> Buffer.add_char buf '\000'
        | Some x ->
            Buffer.add_char buf '\001';
            c.write buf x);
    read =
      (fun r ->
        match read_byte r with
        | Error _ as e -> e
        | Ok 0 -> Ok None
        | Ok 1 -> Result.map Option.some (c.read r)
        | Ok b -> Error (Malformed (Printf.sprintf "bad option tag %d" b)));
  }

(* The count prefix is validated against the bytes remaining before any
   element is decoded: since every element codec consumes ≥ 1 byte, a
   count larger than [remaining] cannot possibly be honest, so a
   corrupt length prefix is rejected in O(1) without allocating. *)
let list elt =
  {
    write =
      (fun buf l ->
        write_varint buf (List.length l);
        List.iter (fun x -> elt.write buf x) l);
    read =
      (fun r ->
        match read_varint r with
        | Error _ as e -> e
        | Ok n ->
            if n < 0 || n > remaining r then
              Error (Malformed "list count exceeds remaining input")
            else begin
              let rec go acc k =
                if k = 0 then Ok (List.rev acc)
                else
                  match elt.read r with
                  | Error _ as e -> e
                  | Ok x -> go (x :: acc) (k - 1)
              in
              go [] n
            end);
  }

(* ------------------------------------------------------------------ *)
(* Tagged unions                                                       *)

type 'a case =
  | Case : {
      tag : int;
      codec : 'b t;
      proj : 'a -> 'b option;
      inj : 'b -> 'a;
    }
      -> 'a case

let case tag codec proj inj =
  if tag < 0 || tag > 0xff then invalid_arg "Codec.case: tag out of range";
  Case { tag; codec; proj; inj }

let union ~name cases =
  {
    write =
      (fun buf x ->
        let rec go = function
          | [] -> invalid_arg (name ^ ": no union case matches value")
          | Case c :: rest -> (
              match c.proj x with
              | Some b ->
                  Buffer.add_char buf (Char.unsafe_chr c.tag);
                  c.codec.write buf b
              | None -> go rest)
        in
        go cases);
    read =
      (fun r ->
        match read_byte r with
        | Error _ as e -> e
        | Ok tag ->
            let rec go = function
              | [] ->
                  Error
                    (Malformed (Printf.sprintf "%s: unknown tag %d" name tag))
              | Case c :: rest ->
                  if c.tag = tag then Result.map c.inj (c.codec.read r)
                  else go rest
            in
            go cases);
  }

(* ------------------------------------------------------------------ *)
(* Whole-value entry points                                            *)

let encode_to_buffer c buf x = c.write buf x

(** Append the binary form of [x] to [buf].  This is the zero-copy
    entry point of the batched I/O path: a caller that owns a reusable
    buffer (a per-connection outbound queue, a payload scratch) encodes
    straight into it, with no intermediate string.  Byte-for-byte
    identical to {!encode_to_string} — the writers are the same — which
    the wire test suite checks across every registered message codec. *)
let encode_into buf c x = c.write buf x

let encode_to_string c x =
  let buf = Buffer.create 64 in
  encode_into buf c x;
  Buffer.contents buf

let encoded_size c x =
  let buf = Buffer.create 64 in
  c.write buf x;
  Buffer.length buf

(** Decode a complete value from [s]; trailing bytes are an error (a
    frame carries exactly one value). *)
let decode_string c s =
  let r = reader s in
  match c.read r with
  | Error _ as e -> e
  | Ok x ->
      if r.pos = r.limit then Ok x
      else Error (Malformed "trailing bytes after value")
