(* One hashing story for the whole repo.

   Every digest structure in lib/digest — and the digest-flavoured
   protocols built on top (merkle, partition recovery, conflict-sync) —
   identifies an irreducible join-decomposition by the same stable
   64-bit hash: FNV-1a over the value's *wire encoding*.  Hashing
   through the codec means the scheme works for every catalogue CRDT by
   construction (each lattice already carries a total codec) and is
   stable across processes, unlike [Hashtbl.hash] on arbitrary OCaml
   values.

   All hashes are folded into the non-negative 63-bit range so they
   varint-encode compactly and sum with plain [lxor] without sign
   surprises. *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

(* Fold a 64-bit value to a *positive, nonzero* 63-bit int.  Zero is
   reserved as the "empty" sum in IBLT cells and Bloom words. *)
let to_key i64 =
  let v = Int64.to_int i64 land max_int in
  if v = 0 then 1 else v

let of_string s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  to_key !h

(* The canonical irreducible hash: encode through the lattice codec,
   FNV-1a the bytes. *)
let of_value codec v = of_string (Crdt_wire.Codec.encode_to_string codec v)

(* splitmix64 finalizer: cheap avalanche for deriving independent hash
   functions (Bloom double-hashing, IBLT check hashes, index streams)
   from one base key. *)
let mix64 z =
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let mix h = to_key (mix64 (Int64.of_int h))

let golden = 0x9e3779b97f4a7c15L

(* An independent hash of [h] per [salt]. *)
let derive ~salt h =
  to_key
    (mix64 (Int64.add (Int64.of_int h) (Int64.mul golden (Int64.of_int (salt + 1)))))

(* Order-independent digest of a set of keys: xor of mixed keys.  The
   mix step stops structured key sets (e.g. consecutive ints) from
   cancelling. *)
let combine acc key = acc lxor mix key

(* Deterministic key-seeded PRNG (splitmix64 sequence) — drives the
   IBLT index stream, identically on both ends of a session. *)
type stream = { mutable s : int64 }

let stream seed = { s = Int64.of_int seed }

let next st =
  st.s <- Int64.add st.s golden;
  Int64.to_int (mix64 st.s) land max_int
