(* Merkle digest-tree helpers shared by the hash-tree protocols.

   The tree is a dense array-of-levels over [fanout^depth] leaf buckets:
   level [depth] holds the bucket hashes, each inner node combines its
   children with a multiplicative mix.  Element hashing is the caller's
   business (the protocols hash irreducibles with {!Hash.of_value});
   this module owns bucket placement, the order-independent bucket
   digest and the level-by-level rollup — one digest story for every
   tree-shaped reconciliation. *)

let leaves ~fanout ~depth =
  int_of_float (Float.pow (float_of_int fanout) (float_of_int depth))

(* Deterministic bucket of an element hash. *)
let bucket_of ~leaves h = h mod leaves

(* Order-independent digest of one bucket's element hashes. *)
let bucket_hash hashes = List.fold_left (fun acc h -> acc lxor h) 0 hashes

(* Children are combined positionally, so sibling order matters (unlike
   within a bucket): acc * 1_000_003 + child. *)
let combine_children acc child = (acc * 1_000_003) + child

(* Level-by-level digests from the leaf hashes: level d has fanout^d
   nodes, level [depth] is [bucket_hashes] itself. *)
let compute ~fanout ~depth bucket_hashes =
  let levels = Array.make (depth + 1) [||] in
  levels.(depth) <- bucket_hashes;
  for d = depth - 1 downto 0 do
    let width = int_of_float (Float.pow (float_of_int fanout) (float_of_int d)) in
    levels.(d) <-
      Array.init width (fun i ->
          let child_base = i * fanout in
          let acc = ref 0 in
          for k = 0 to fanout - 1 do
            acc := combine_children !acc levels.(d + 1).(child_base + k)
          done;
          !acc)
  done;
  levels
