(* Rateless invertible Bloom lookup table over 63-bit keys.

   A cell holds {count; key_sum; hash_sum}: signed insertion count, xor
   of inserted keys, xor of a 32-bit check hash of each key.  Cell-wise
   subtraction of two tables built over key sets A and B cancels every
   shared key exactly, leaving a table of the symmetric difference with
   signs (+1 = only in A's table, -1 = only in B's).

   Ratelessness: instead of fixing the table size up front (which needs
   a size-estimation round), each key maps to an *infinite* deterministic
   index stream with density ~2/i at index i — index 0 always, then
   geometrically growing gaps drawn from a key-seeded splitmix64 PRNG.
   Any prefix [0, m) of the infinite table is a valid IBLT whose load
   per cell falls as m grows, so a sender can keep streaming cells until
   the receiver's peeling decoder succeeds; expected decode happens at
   m ≈ 1.35–2× the difference size, regardless of set size.  (This is
   the construction from Rateless IBLTs, SIGCOMM '24, which ConflictSync
   builds on.)

   Everything is commutative xor/add, so table construction is
   independent of key enumeration order — both ends of a session build
   identical cells from Hashtbl or fold_decompose iteration without any
   sorting. *)

type cell = { count : int; key_sum : int; hash_sum : int }

let zero_cell = { count = 0; key_sum = 0; hash_sum = 0 }
let is_zero c = c.count = 0 && c.key_sum = 0 && c.hash_sum = 0

(* 32-bit check hash: small on the wire, and a false peel needs a
   simultaneous key_sum/hash_sum collision (~2^-32 per candidate). *)
let check key = Hash.derive ~salt:303 key land 0xffffffff

(* Visit every index of [key]'s stream below [limit], in ascending
   order.  Gap after index i is 1 + (rand mod (i + 2)): mean gap grows
   linearly, so a key touches O(log limit) cells. *)
let iter_indexes ~key ~limit f =
  let st = Hash.stream (Hash.derive ~salt:404 key) in
  let i = ref 0 in
  while !i < limit do
    f !i;
    i := !i + 1 + (Hash.next st mod (!i + 2))
  done

let add_key cells ~lo ~sign key =
  let len = Array.length cells in
  let h = check key in
  iter_indexes ~key ~limit:(lo + len) (fun i ->
      if i >= lo then begin
        let c = cells.(i - lo) in
        cells.(i - lo) <-
          {
            count = c.count + sign;
            key_sum = c.key_sum lxor key;
            hash_sum = c.hash_sum lxor h;
          }
      end)

(* Cells [lo, lo+len) of the infinite table over [keys]. *)
let build ~keys ~lo ~len =
  let cells = Array.make len zero_cell in
  List.iter (fun key -> add_key cells ~lo ~sign:1 key) keys;
  cells

(* Cell-wise a - b (tables over the same index range). *)
let sub a b =
  if Array.length a <> Array.length b then invalid_arg "Iblt.sub: length mismatch";
  Array.init (Array.length a) (fun i ->
      let x = a.(i) and y = b.(i) in
      {
        count = x.count - y.count;
        key_sum = x.key_sum lxor y.key_sum;
        hash_sum = x.hash_sum lxor y.hash_sum;
      })

(* Peel a difference table: repeatedly find a pure cell (|count| = 1 and
   the check hash confirms key_sum is a single key), record the key with
   its sign, remove it everywhere.  Success iff every cell zeroes out —
   then (plus, minus) is exactly the signed symmetric difference.
   Deterministic: cells are scanned in ascending index order. *)
let peel cells =
  let n = Array.length cells in
  let c = Array.copy cells in
  let plus = ref [] and minus = ref [] in
  let progress = ref true in
  while !progress do
    progress := false;
    for i = 0 to n - 1 do
      let cell = c.(i) in
      if
        (cell.count = 1 || cell.count = -1)
        && cell.key_sum <> 0
        && cell.hash_sum = check cell.key_sum
      then begin
        let key = cell.key_sum and sign = cell.count in
        if sign = 1 then plus := key :: !plus else minus := key :: !minus;
        let h = check key in
        iter_indexes ~key ~limit:n (fun j ->
            let cj = c.(j) in
            c.(j) <-
              {
                count = cj.count - sign;
                key_sum = cj.key_sum lxor key;
                hash_sum = cj.hash_sum lxor h;
              });
        progress := true
      end
    done
  done;
  if Array.for_all is_zero c then Some (List.rev !plus, List.rev !minus)
  else None

(* Wire: count is signed (zigzag), sums are non-negative varints. *)
let cell_codec =
  let open Crdt_wire.Codec in
  conv
    (fun c -> (c.count, c.key_sum, c.hash_sum))
    (fun (count, key_sum, hash_sum) -> { count; key_sum; hash_sum })
    (triple int varint varint)
