(* Bloom filter over 63-bit keys (Hash.of_value of irreducibles).

   Sized from (expected insertions, target false-positive rate) with
   the standard optima: bits = -n ln p / ln² 2, k = bits/n · ln 2.
   Membership uses double hashing — h1 + i·h2 mod nbits — which is
   indistinguishable from k independent hash functions at these sizes
   and costs two derives per key. *)

type t = { nbits : int; k : int; bits : Bytes.t }

let bytes_for nbits = (nbits + 7) / 8

let create ~expected ~fpr =
  if not (fpr > 0. && fpr < 1.) then invalid_arg "Bloom.create: fpr outside (0, 1)";
  let n = max 1 expected in
  let ln2 = log 2. in
  let nbits =
    max 64 (int_of_float (ceil (-.float_of_int n *. log fpr /. (ln2 *. ln2))))
  in
  let k = max 1 (int_of_float (Float.round (float_of_int nbits /. float_of_int n *. ln2))) in
  { nbits; k; bits = Bytes.make (bytes_for nbits) '\000' }

let indexes t key f =
  let h1 = Hash.derive ~salt:101 key in
  let h2 = Hash.derive ~salt:202 key lor 1 in
  for i = 0 to t.k - 1 do
    (* OCaml ints wrap on overflow; land max_int keeps the index
       non-negative. *)
    f ((h1 + (i * h2)) land max_int mod t.nbits)
  done

let add t key =
  indexes t key (fun bit ->
      let byte = bit lsr 3 and off = bit land 7 in
      Bytes.unsafe_set t.bits byte
        (Char.chr (Char.code (Bytes.unsafe_get t.bits byte) lor (1 lsl off))))

let mem t key =
  let ok = ref true in
  indexes t key (fun bit ->
      let byte = bit lsr 3 and off = bit land 7 in
      if Char.code (Bytes.unsafe_get t.bits byte) land (1 lsl off) = 0 then
        ok := false);
  !ok

let of_keys ~fpr keys =
  let t = create ~expected:(List.length keys) ~fpr in
  List.iter (add t) keys;
  t

(* Wire size of the bit array itself (the dominant term). *)
let bits_bytes t = Bytes.length t.bits

let codec =
  let open Crdt_wire.Codec in
  conv_partial
    (fun t -> ((t.nbits, t.k), Bytes.to_string t.bits))
    (fun ((nbits, k), bits) ->
      if nbits < 1 then Error (Malformed "bloom: nbits < 1")
      else if k < 1 || k > 64 then Error (Malformed "bloom: k outside [1, 64]")
      else if String.length bits <> bytes_for nbits then
        Error (Malformed "bloom: bit array length mismatch")
      else Ok { nbits; k; bits = Bytes.of_string bits })
    (pair (pair varint varint) string)
