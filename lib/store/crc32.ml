(** CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320).

    Hand-rolled table-driven implementation — the store's per-record
    integrity check must not pull in an external checksum dependency.
    OCaml's native [int] is ≥ 63 bits, so the 32-bit arithmetic is plain
    [land]/[lxor] with a final mask. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

(** [update crc s pos len] folds [len] bytes of [s] at [pos] into a
    running value previously returned by [update] (start from 0). *)
let update crc s pos len =
  let t = Lazy.force table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := t.((!c lxor Char.code (String.unsafe_get s i)) land 0xFF)
         lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

(** CRC-32 of [len] bytes of [s] starting at [pos]. *)
let digest_sub s pos len = update 0 s pos len

let digest s = digest_sub s 0 (String.length s)
