(** Durable replica storage: append-only segment log + checkpoints.

    A store directory holds numbered segment files
    ([segment-%016d.log]); each segment is a sequence of records framed
    exactly like wire messages ({!Crdt_wire.Frame}: magic / version /
    kind / varint payload length), with store-specific kind bytes and a
    CRC-32 of the kind byte followed by the body prepended to every
    payload (the kind is under the checksum because the three kind
    values are a single bit flip apart).  Three record kinds
    exist: [Delta] (one wire-encoded delta), [Checkpoint] (one
    wire-encoded full state) and [SegmentSeal] (end-of-segment marker
    written when a segment rolls).  See DESIGN.md §11 for the full
    on-disk format specification.

    Durability contract: a delta is appended before (or in the same
    process step as) the state change is acknowledged anywhere, so the
    on-disk image is always a {e lattice prefix} of the in-memory state
    — recovery yields [checkpoint ⊔ deltas ⊑ live state].  Joins are
    idempotent and commutative, so replay order does not matter and a
    delta surviving twice (around a checkpoint) is harmless.

    Torn-tail tolerance: a crash can leave the {e final} segment with a
    truncated or corrupt last record; recovery drops everything from the
    first invalid byte to EOF and reports the dropped byte count.  The
    same damage in a non-final segment means real corruption (segments
    are sealed and fsynced before a successor is created) and raises
    {!Corrupt}. *)

type fsync_policy =
  | Always  (** fsync after every append — maximal durability. *)
  | Interval of float
      (** fsync at most once per [s] seconds of appends (group commit). *)
  | Never  (** leave flushing to the OS; checkpoints still fsync. *)

val fsync_policy_of_string : string -> (fsync_policy, string) result
(** ["always"] | ["interval"] | ["interval:<seconds>"] | ["never"]. *)

val fsync_policy_name : fsync_policy -> string

type recovery = {
  checkpoint : string option;  (** last durable full-state image. *)
  deltas : string list;
      (** delta bodies appended after that checkpoint, oldest first. *)
  replayed_records : int;  (** [List.length deltas]. *)
  replayed_bytes : int;  (** summed body bytes of [deltas]. *)
  checkpoint_bytes : int;  (** body bytes of [checkpoint] (0 if none). *)
  truncated_bytes : int;
      (** torn-tail bytes dropped from the final segment. *)
  segments : int;  (** segment files scanned. *)
}

exception Corrupt of string
(** Raised when a non-final segment is damaged — torn tails are only
    expected (and tolerated) where a crash can produce them. *)

val read : dir:string -> recovery
(** Read-only recovery scan of [dir] (which may not exist — that is an
    empty store).  Does not modify the directory. *)

type t
(** An open store with an active segment accepting appends. *)

val open_ : ?segment_bytes:int -> ?fsync:fsync_policy -> dir:string -> unit
  -> t * recovery
(** Open (creating [dir] if needed) and recover: scans existing
    segments, physically truncates a torn tail off the final segment,
    and positions the writer after the last valid record.
    [segment_bytes] (default 4 MiB) is the roll threshold. *)

val append_delta : t -> string -> unit
(** Append one wire-encoded delta body.  Durability per the store's
    {!fsync_policy}. *)

val checkpoint : t -> string -> unit
(** Append a full-state checkpoint record, fsync it (always — a
    checkpoint authorizes pruning), then delete every segment older
    than the one holding it.  A crash at any point leaves either the
    new checkpoint durable or the previous checkpoint (and all its
    deltas) untouched. *)

val deltas_since_checkpoint : t -> int
(** Delta records appended (or recovered) since the last checkpoint —
    the caller's checkpoint-interval counter. *)

val appended_bytes : t -> int
(** Total delta body bytes appended through this handle. *)

val sync : t -> unit
(** Force an fsync of the active segment now (used at clean shutdown). *)

val close : t -> unit
(** [sync] + close the active segment's descriptor. *)
