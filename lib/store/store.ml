(* Append-only segment log with checkpoints; see store.mli and
   DESIGN.md §11 for the format contract.

   Layout per record (reusing the wire framing so one decoder serves
   both sockets and disk):

     magic 0xC5 | version | kind | varint len | crc32(body) BE 4B | body

   Kind bytes live in a store-local namespace disjoint from the socket
   runtime's (0–4), so a file can never be confused for a socket
   stream dump — and vice versa. *)

module Frame = Crdt_wire.Frame
module Codec = Crdt_wire.Codec

let kind_delta = 0x10
let kind_checkpoint = 0x11
let kind_seal = 0x12
let default_segment_bytes = 4 * 1024 * 1024

type fsync_policy = Always | Interval of float | Never

let fsync_policy_of_string s =
  match String.lowercase_ascii s with
  | "always" -> Ok Always
  | "never" -> Ok Never
  | "interval" -> Ok (Interval 0.05)
  | s when String.length s > 9 && String.sub s 0 9 = "interval:" -> (
      match float_of_string_opt (String.sub s 9 (String.length s - 9)) with
      | Some f when f > 0. -> Ok (Interval f)
      | _ -> Error (Printf.sprintf "bad fsync interval in %S" s))
  | _ -> Error (Printf.sprintf "unknown fsync policy %S (always|interval|never)" s)

let fsync_policy_name = function
  | Always -> "always"
  | Interval _ -> "interval"
  | Never -> "never"

type recovery = {
  checkpoint : string option;
  deltas : string list;
  replayed_records : int;
  replayed_bytes : int;
  checkpoint_bytes : int;
  truncated_bytes : int;
  segments : int;
}

exception Corrupt of string

(* ------------------------------------------------------------------ *)
(* Directory layout                                                    *)

let segment_name seq = Printf.sprintf "segment-%016d.log" seq

let segment_seq name =
  match Scanf.sscanf_opt name "segment-%d.log" (fun d -> d) with
  | Some d when segment_name d = name -> Some d
  | _ -> None

let list_segments dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter_map segment_seq
    |> List.sort compare

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* Scanning                                                            *)

type scan_acc = {
  mutable s_checkpoint : string option;
  mutable s_deltas : string list;  (** newest first. *)
  mutable s_truncated : int;
}

(* Outcome of one segment: how far its valid record prefix reaches and
   whether it ended with a seal. *)
type segment_end = { valid_len : int; sealed : bool }

(* The record CRC covers the kind byte followed by the body, not the
   body alone: the three kind values are one bit flip apart, and a
   flipped kind reinterprets the record (a delta read back as a
   checkpoint silently discards every delta before it), so the kind
   must be under the checksum. *)
let record_crc ~kind body =
  let k = String.make 1 (Char.chr kind) in
  Crc32.update (Crc32.digest k) body 0 (String.length body)

(* Validate one record payload: 4-byte big-endian CRC over kind ‖ body.
   Returns the body or [None] on mismatch/short payload. *)
let check_record ~kind payload =
  let len = String.length payload in
  if len < 4 then None
  else
    let crc =
      (Char.code payload.[0] lsl 24)
      lor (Char.code payload.[1] lsl 16)
      lor (Char.code payload.[2] lsl 8)
      lor Char.code payload.[3]
    in
    let body = String.sub payload 4 (len - 4) in
    if record_crc ~kind body = crc then Some body else None

(* Scan one segment's records into [acc].  A damaged suffix is
   tolerated only in the final segment (the only place a crash can tear
   a record): everything from the first invalid byte is dropped and
   counted.  Elsewhere it raises {!Corrupt}. *)
let scan_segment ~path ~final acc =
  let s = read_file path in
  let total = String.length s in
  let feed = Frame.feed () in
  Frame.push feed s;
  let invalid why before =
    if final then begin
      acc.s_truncated <- acc.s_truncated + (total - before);
      { valid_len = before; sealed = false }
    end
    else
      raise
        (Corrupt
           (Printf.sprintf "%s: %s at offset %d in non-final segment" path why
              before))
  in
  let rec go before =
    if Frame.pending_bytes feed = 0 then { valid_len = total; sealed = false }
    else
      match Frame.pop feed with
      | Ok None -> invalid "torn record" before
      | Error e -> invalid (Codec.error_to_string e) before
      | Ok (Some (kind, payload)) -> (
          let after = total - Frame.pending_bytes feed in
          match check_record ~kind payload with
          | None -> invalid "record CRC mismatch" before
          | Some body ->
              if kind = kind_delta then begin
                acc.s_deltas <- body :: acc.s_deltas;
                go after
              end
              else if kind = kind_checkpoint then begin
                acc.s_checkpoint <- Some body;
                acc.s_deltas <- [];
                go after
              end
              else if kind = kind_seal then
                if Frame.pending_bytes feed = 0 then
                  { valid_len = total; sealed = true }
                else invalid "records after segment seal" after
              else invalid (Printf.sprintf "unknown record kind 0x%02x" kind)
                     before)
  in
  go 0

(* Full-directory scan: recovery image plus writer positioning for the
   final segment ([None] when the directory holds no segments). *)
let scan dir =
  let seqs = list_segments dir in
  let acc = { s_checkpoint = None; s_deltas = []; s_truncated = 0 } in
  let rec go tail = function
    | [] -> tail
    | seq :: rest ->
        let path = Filename.concat dir (segment_name seq) in
        let e = scan_segment ~path ~final:(rest = []) acc in
        go (Some (seq, e)) rest
  in
  let tail = go None seqs in
  let deltas = List.rev acc.s_deltas in
  let recovery =
    {
      checkpoint = acc.s_checkpoint;
      deltas;
      replayed_records = List.length deltas;
      replayed_bytes = List.fold_left (fun a d -> a + String.length d) 0 deltas;
      checkpoint_bytes =
        (match acc.s_checkpoint with Some c -> String.length c | None -> 0);
      truncated_bytes = acc.s_truncated;
      segments = List.length seqs;
    }
  in
  (recovery, tail)

let read ~dir = fst (scan dir)

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)

type t = {
  dir : string;
  segment_bytes : int;
  fsync : fsync_policy;
  buf : Buffer.t;  (** record staging, reused across appends. *)
  mutable seq : int;  (** active segment sequence number. *)
  mutable fd : Unix.file_descr;
  mutable written : int;  (** bytes in the active segment. *)
  mutable since_checkpoint : int;
  mutable appended : int;  (** delta body bytes through this handle. *)
  mutable last_sync : float;
  mutable unsynced : bool;
}

let open_segment dir seq =
  Unix.openfile
    (Filename.concat dir (segment_name seq))
    [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
    0o644

let fsync_now t =
  if t.unsynced then begin
    Unix.fsync t.fd;
    t.unsynced <- false
  end;
  t.last_sync <- Unix.gettimeofday ()

let maybe_fsync t =
  match t.fsync with
  | Always -> fsync_now t
  | Never -> ()
  | Interval s ->
      if Unix.gettimeofday () -. t.last_sync >= s then fsync_now t

let write_buf t =
  let s = Buffer.contents t.buf in
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring t.fd s !off (n - !off)
  done;
  t.written <- t.written + n;
  t.unsynced <- true

let emit_record t ~kind body =
  Buffer.clear t.buf;
  Frame.add_header t.buf ~kind ~payload_len:(4 + String.length body);
  let crc = record_crc ~kind body in
  Buffer.add_char t.buf (Char.chr ((crc lsr 24) land 0xFF));
  Buffer.add_char t.buf (Char.chr ((crc lsr 16) land 0xFF));
  Buffer.add_char t.buf (Char.chr ((crc lsr 8) land 0xFF));
  Buffer.add_char t.buf (Char.chr (crc land 0xFF));
  Buffer.add_string t.buf body;
  write_buf t

(* Roll: seal the active segment (fsynced unconditionally, so every
   non-final segment is guaranteed clean — the precondition for
   treating mid-file damage there as real corruption), then start its
   successor. *)
let roll t =
  emit_record t ~kind:kind_seal "";
  Unix.fsync t.fd;
  t.unsynced <- false;
  Unix.close t.fd;
  t.seq <- t.seq + 1;
  t.fd <- open_segment t.dir t.seq;
  t.written <- 0

let append_delta t body =
  emit_record t ~kind:kind_delta body;
  t.since_checkpoint <- t.since_checkpoint + 1;
  t.appended <- t.appended + String.length body;
  if t.written >= t.segment_bytes then roll t else maybe_fsync t

(* The checkpoint is written and fsynced before any segment is deleted:
   a crash before the fsync leaves the previous checkpoint and every
   segment it needs intact (the torn/absent new record is dropped at
   recovery); a crash after it leaves at worst undeleted — harmless —
   older segments whose records the new checkpoint subsumes. *)
let checkpoint t body =
  emit_record t ~kind:kind_checkpoint body;
  Unix.fsync t.fd;
  t.unsynced <- false;
  t.last_sync <- Unix.gettimeofday ();
  t.since_checkpoint <- 0;
  List.iter
    (fun seq ->
      if seq < t.seq then
        try Sys.remove (Filename.concat t.dir (segment_name seq))
        with Sys_error _ -> ())
    (list_segments t.dir)

let deltas_since_checkpoint t = t.since_checkpoint
let appended_bytes t = t.appended

let sync t = fsync_now t

let close t =
  fsync_now t;
  Unix.close t.fd

let open_ ?(segment_bytes = default_segment_bytes) ?(fsync = Never) ~dir () =
  mkdir_p dir;
  let recovery, tail = scan dir in
  let seq, truncate_to =
    match tail with
    | None -> (0, None)
    | Some (seq, { sealed = true; _ }) -> (seq + 1, None)
    | Some (seq, { sealed = false; valid_len }) -> (seq, Some valid_len)
  in
  (* Drop a torn tail physically before appending over it. *)
  (match truncate_to with
  | Some len when recovery.truncated_bytes > 0 ->
      let fd =
        Unix.openfile (Filename.concat dir (segment_name seq)) [ Unix.O_WRONLY ]
          0o644
      in
      Unix.ftruncate fd len;
      Unix.close fd
  | _ -> ());
  let fd = open_segment dir seq in
  let t =
    {
      dir;
      segment_bytes;
      fsync;
      buf = Buffer.create 1024;
      seq;
      fd;
      written = (match truncate_to with Some len -> len | None -> 0);
      since_checkpoint = recovery.replayed_records;
      appended = 0;
      last_sync = Unix.gettimeofday ();
      unsynced = false;
    }
  in
  (t, recovery)
