(** Per-user replicated state for the Retwis application (Section V-C).

    Each user owns three objects, composed here into one lattice so that
    the whole social store is a single CRDT and every synchronization
    protocol applies unchanged:

    - {b followers}: a GSet of user ids;
    - {b wall}: a GMap from tweet identifiers to tweet content
      (LWW registers — content is written once);
    - {b timeline}: a GMap from tweet timestamps to tweet identifiers.

    The paper uses tweet identifiers of 31 B and contents of 270 B,
    representative of Facebook's key-value workloads [27]; the workload
    generator follows those sizes. *)

open Crdt_core

module Followers = Gset.Of_int
module Wall = Gmap.Make (Gmap.String_key) (Lww_register)
module Timeline = Gmap.Make (Gmap.Int_key) (Lww_register)
module Rest = Product.Make (Wall) (Timeline)
module P = Product.Make (Followers) (Rest)
include P

type op =
  | Follow of int  (** the given user starts following this user. *)
  | Post of { tweet_id : string; content : string }
      (** write a tweet to this user's wall. *)
  | Timeline_add of { timestamp : int; tweet_id : string }
      (** a followed user's tweet lands on this user's timeline. *)

let mutate op i ((followers, (wall, timeline)) : t) : t =
  match op with
  | Follow who -> (Followers.add who i followers, (wall, timeline))
  | Post { tweet_id; content } ->
      ( followers,
        (Wall.apply tweet_id (Lww_register.Write content) i wall, timeline) )
  | Timeline_add { timestamp; tweet_id } ->
      ( followers,
        (wall, Timeline.apply timestamp (Lww_register.Write tweet_id) i timeline)
      )

let delta_mutate op i ((followers, (wall, timeline)) : t) : t =
  match op with
  | Follow who ->
      (Followers.delta_mutate who i followers, Rest.bottom)
  | Post { tweet_id; content } ->
      ( Followers.bottom,
        ( Wall.apply_delta tweet_id (Lww_register.Write content) i wall,
          Timeline.bottom ) )
  | Timeline_add { timestamp; tweet_id } ->
      ( Followers.bottom,
        ( Wall.bottom,
          Timeline.apply_delta timestamp (Lww_register.Write tweet_id) i
            timeline ) )

let prepare op _ _ = op

let op_weight = function Follow _ | Post _ | Timeline_add _ -> 1

let op_byte_size = function
  | Follow _ -> 8
  | Post { tweet_id; content } -> String.length tweet_id + String.length content
  | Timeline_add { tweet_id; _ } -> 8 + String.length tweet_id

let op_codec =
  let open Crdt_wire.Codec in
  union ~name:"user_state_op"
    [
      case 0 int
        (function Follow who -> Some who | Post _ | Timeline_add _ -> None)
        (fun who -> Follow who);
      case 1 (pair string string)
        (function
          | Post { tweet_id; content } -> Some (tweet_id, content)
          | Follow _ | Timeline_add _ -> None)
        (fun (tweet_id, content) -> Post { tweet_id; content });
      case 2 (pair int string)
        (function
          | Timeline_add { timestamp; tweet_id } -> Some (timestamp, tweet_id)
          | Follow _ | Post _ -> None)
        (fun (timestamp, tweet_id) -> Timeline_add { timestamp; tweet_id });
    ]

let pp_op ppf = function
  | Follow who -> Format.fprintf ppf "follow(%d)" who
  | Post { tweet_id; _ } -> Format.fprintf ppf "post(%s)" tweet_id
  | Timeline_add { timestamp; tweet_id } ->
      Format.fprintf ppf "timeline(%d,%s)" timestamp tweet_id

(** Read accessors used by the workload generator and examples. *)

let followers ((f, _) : t) = Followers.elements f
let wall ((_, (w, _)) : t) = w
let timeline ((_, (_, tl)) : t) = tl

(** The 10 most recent tweet ids on the user's timeline, newest first
    (the paper's Timeline operation fetches the 10 most recent tweets). *)
let recent_timeline ?(limit = 10) (state : t) =
  let entries = Timeline.bindings (timeline state) in
  let newest_first =
    List.sort (fun (a, _) (b, _) -> Int.compare b a) entries
  in
  List.filteri (fun idx _ -> idx < limit) newest_first
  |> List.map (fun (ts, reg) -> (ts, Lww_register.value reg))
