(** Per-user replication of the Retwis store, matching the paper's
    deployment of ~30 K independent CRDT objects (Section V-C).

    Each user's {!User_state} is an independent replicated object with its
    own δ-buffer and inflation check; messages between two nodes bundle
    the per-user payloads (see [Crdt_proto.Sharded]). *)

module Key = struct
  type t = int

  let compare = Int.compare
  let byte_size _ = 8
  let codec = Crdt_wire.Codec.int
end

(** Sharded delta-based synchronization of the Retwis store under the
    given Algorithm 1 configuration (classic / BP / RR / BP+RR). *)
module Delta (Cfg : Crdt_proto.Delta_sync.CONFIG) =
  Crdt_proto.Sharded.Make (Key) (User_state)
    (Crdt_proto.Delta_sync.Make (User_state) (Cfg))

(** Sharded state-based synchronization, as a baseline. *)
module State =
  Crdt_proto.Sharded.Make (Key) (User_state)
    (Crdt_proto.State_sync.Make (User_state))
