(** Retwis workload generator (Table II).

    Operation mix: 15 % Follow (1 CRDT update), 35 % Post Tweet
    (1 + #followers updates), 50 % Timeline (read-only, 0 updates).
    Which user an operation targets follows a Zipf distribution whose
    coefficient sweeps 0.5 (low contention) → 1.5 (high contention).

    Tweet identifiers are 31 B and contents 270 B, as in the paper. *)

type stats = {
  mutable follows : int;
  mutable posts : int;
  mutable timeline_reads : int;
  mutable updates : int;  (** total CRDT updates issued. *)
  mutable fanout : int;  (** timeline deliveries caused by posts. *)
}

type t = {
  users : int;
  zipf : Crdt_sim.Zipf.t;
  rng : Random.State.t;
  stats : stats;
  mutable next_tweet : int;
}

let make ~seed ~users ~coefficient =
  let rng = Random.State.make [| seed; 0x5e7 |] in
  {
    users;
    zipf = Crdt_sim.Zipf.make ~rng ~s:coefficient ~n:users;
    rng;
    stats =
      { follows = 0; posts = 0; timeline_reads = 0; updates = 0; fanout = 0 };
    next_tweet = 0;
  }

let stats t = t.stats

(* 31-byte tweet identifier and 270-byte content, the sizes reported from
   Facebook's general-purpose key-value store analysis [27]. *)
let tweet_id t node =
  let raw = Printf.sprintf "t-%d-%d-%d" node t.next_tweet t.users in
  t.next_tweet <- t.next_tweet + 1;
  let padded = raw ^ String.make 31 'x' in
  String.sub padded 0 31

let content = String.make 270 'c'

(** Operations performed by [node] in [round], as (user, operation)
    pairs.  [followers_of] reads the node's local replica (posting fans
    out to the author's currently known followers); [timeline_of] performs
    the read-only Timeline fetch.  One application-level operation per
    node per round. *)
let raw_ops t ~round ~node ~followers_of ~timeline_of :
    (int * User_state.op) list =
  let target () = Crdt_sim.Zipf.sample t.zipf in
  let roll = Random.State.float t.rng 1.0 in
  if roll < 0.15 then begin
    (* Follow: user a follows user b, updating b's follower set. *)
    let follower = Random.State.int t.rng t.users in
    let followee = target () in
    t.stats.follows <- t.stats.follows + 1;
    t.stats.updates <- t.stats.updates + 1;
    [ (followee, User_state.Follow follower) ]
  end
  else if roll < 0.50 then begin
    (* Post: write to the author's wall and to every follower's
       timeline. *)
    let author = target () in
    let id = tweet_id t node in
    let timestamp = (round * 1_000_003) + (node * 131) + t.next_tweet in
    let fans : int list = followers_of author in
    t.stats.posts <- t.stats.posts + 1;
    t.stats.fanout <- t.stats.fanout + List.length fans;
    t.stats.updates <- t.stats.updates + 1 + List.length fans;
    (author, User_state.Post { tweet_id = id; content })
    :: List.map
         (fun fan ->
           (fan, User_state.Timeline_add { timestamp; tweet_id = id }))
         fans
  end
  else begin
    (* Timeline: fetch the 10 most recent tweets — read-only. *)
    let reader = target () in
    timeline_of reader;
    t.stats.timeline_reads <- t.stats.timeline_reads + 1;
    []
  end

(** Specialization of {!raw_ops} reading from a whole-database
    {!Store.t} replica, in the engine's workload-generator shape. *)
let ops t : (Store.t, Store.op) Crdt_engine.Workload.gen =
 fun ~round ~node (db : Store.t) ->
  raw_ops t ~round ~node
    ~followers_of:(fun user -> Store.followers_of user db)
    ~timeline_of:(fun user -> ignore (Store.timeline_of user db))
  |> List.map (fun (user, op) -> Store.Apply (user, op))

(** Specialization of {!raw_ops} reading from a sharded per-user replica
    (an association of user id to {!User_state.t}, as produced by
    [Crdt_proto.Sharded]). *)
let ops_sharded t :
    ((int * User_state.t) list, int * User_state.op) Crdt_engine.Workload.gen =
 fun ~round ~node (objects : (int * User_state.t) list) ->
  let find user =
    match List.assoc_opt user objects with
    | Some st -> st
    | None -> User_state.bottom
  in
  raw_ops t ~round ~node
    ~followers_of:(fun user -> User_state.followers (find user))
    ~timeline_of:(fun user ->
      ignore (User_state.recent_timeline (find user)))

(** Measured operation mix, for reproducing Table II. *)
let mix t =
  let s = t.stats in
  let total = s.follows + s.posts + s.timeline_reads in
  let pct x = 100. *. float_of_int x /. float_of_int (max 1 total) in
  ( pct s.follows,
    pct s.posts,
    pct s.timeline_reads,
    if s.posts = 0 then 0.
    else 1. +. (float_of_int s.fanout /. float_of_int s.posts) )
