(** The whole Retwis database as one composed CRDT: a grow-only map from
    user id to {!User_state}.

    With the store expressed as a single lattice, optimal deltas localize
    updates to the touched user/object automatically, and every protocol
    of [crdt_proto] replicates the full application unchanged. *)

open Crdt_core

module Db = Gmap.Make (Gmap.Int_key) (User_state)
include Db

(** Application-level queries. *)

let followers_of user db = User_state.followers (find user db)

let wall_of user db = User_state.wall (find user db)

let timeline_of ?limit user db =
  User_state.recent_timeline ?limit (find user db)

(** Application-level update helpers (classic mutators). *)

let follow ~follower ~followee i db =
  apply followee (User_state.Follow follower) i db

let post ~author ~tweet_id ~content i db =
  apply author (User_state.Post { tweet_id; content }) i db

let push_timeline ~user ~timestamp ~tweet_id i db =
  apply user (User_state.Timeline_add { timestamp; tweet_id }) i db
