(** Retwis workload generator (Table II).

    Operation mix: 15 % Follow (1 CRDT update), 35 % Post Tweet
    (1 + #followers updates), 50 % Timeline (read-only).  Operation
    targets follow a Zipf distribution over users; tweet identifiers are
    31 B and contents 270 B, as in the paper.  Deterministic for a fixed
    seed. *)

type stats = {
  mutable follows : int;
  mutable posts : int;
  mutable timeline_reads : int;
  mutable updates : int;  (** total CRDT updates issued. *)
  mutable fanout : int;  (** timeline deliveries caused by posts. *)
}

type t

val make : seed:int -> users:int -> coefficient:float -> t
val stats : t -> stats

val raw_ops :
  t ->
  round:int ->
  node:int ->
  followers_of:(int -> int list) ->
  timeline_of:(int -> unit) ->
  (int * User_state.op) list
(** One application-level operation for [node] at [round], expressed as
    (user, operation) updates.  [followers_of] reads the node's local
    replica (posts fan out to the author's currently known followers);
    [timeline_of] performs the read-only Timeline fetch. *)

val ops : t -> (Store.t, Store.op) Crdt_engine.Workload.gen
(** {!raw_ops} reading from a whole-database {!Store.t} replica,
    exposed in the engine's {!Crdt_engine.Workload.gen} shape so the
    simulator, serve and benchmarks all consume Retwis through the same
    interface as the micro-workloads. *)

val ops_sharded :
  t -> ((int * User_state.t) list, int * User_state.op) Crdt_engine.Workload.gen
(** {!raw_ops} reading from a sharded per-user replica (as produced by
    [Crdt_proto.Sharded]), likewise a {!Crdt_engine.Workload.gen}. *)

val mix : t -> float * float * float * float
(** Measured (follow %, post %, timeline %, avg updates per post) — the
    numbers of Table II. *)
