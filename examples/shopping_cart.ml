(* A replicated shopping cart built by composing CRDTs from the library:
   a GMap from product name to a PNCounter of quantities, replicated
   across three independent devices (phone, laptop, tablet) that
   synchronize pairwise with optimal deltas.

   Demonstrates: composing lattices, concurrent updates, and how small
   the exchanged deltas stay compared to the full cart.

   Run with: dune exec examples/shopping_cart.exe *)

open Crdt_core
module Cart = Gmap.Make (Gmap.String_key) (Pncounter)
module D = Delta.Make (Cart)

let phone = Replica_id.of_int 0
let laptop = Replica_id.of_int 1
let tablet = Replica_id.of_int 2

let show name cart =
  Printf.printf "%-8s:" name;
  List.iter
    (fun (item, count) -> Printf.printf " %s x%d" item (Pncounter.value count))
    (Cart.bindings cart);
  print_newline ()

let () =
  (* Everyone starts from the last synchronized cart. *)
  let base =
    Cart.apply "milk" (Pncounter.Inc 1) phone Cart.empty
    |> Cart.apply "bread" (Pncounter.Inc 2) phone
  in
  show "base" base;

  (* Concurrent edits while offline. *)
  let on_phone =
    base
    |> Cart.apply "milk" (Pncounter.Inc 1) phone
    |> Cart.apply "eggs" (Pncounter.Inc 6) phone
  in
  let on_laptop =
    base
    |> Cart.apply "bread" (Pncounter.Dec 1) laptop
    |> Cart.apply "coffee" (Pncounter.Inc 1) laptop
  in
  let on_tablet = base |> Cart.apply "milk" (Pncounter.Inc 2) tablet in
  show "phone" on_phone;
  show "laptop" on_laptop;
  show "tablet" on_tablet;

  (* Phone ↔ laptop synchronize with optimal deltas. *)
  let d_phone_to_laptop = D.delta on_phone on_laptop in
  let d_laptop_to_phone = D.delta on_laptop on_phone in
  Printf.printf "\nphone→laptop delta: %d entries (full cart: %d)\n"
    (Cart.weight d_phone_to_laptop)
    (Cart.weight on_phone);
  Printf.printf "laptop→phone delta: %d entries (full cart: %d)\n"
    (Cart.weight d_laptop_to_phone)
    (Cart.weight on_laptop);
  let phone2 = Cart.join on_phone d_laptop_to_phone in
  let laptop2 = Cart.join on_laptop d_phone_to_laptop in
  assert (Cart.equal phone2 laptop2);
  show "\nsynced" phone2;

  (* Tablet joins late; deltas flow both ways, everyone agrees. *)
  let tablet2 = Cart.join on_tablet (D.delta phone2 on_tablet) in
  let phone3 = Cart.join phone2 (D.delta tablet2 phone2) in
  assert (Cart.equal tablet2 phone3);
  show "final" phone3;

  (* The merge kept every concurrent edit: milk 1+1+2, bread 2-1,
     eggs 6, coffee 1. *)
  assert (Pncounter.value (Cart.find "milk" phone3) = 4);
  assert (Pncounter.value (Cart.find "bread" phone3) = 1);
  Printf.printf "\nall replicas converged; no update was lost.\n"
