(* Recovering from a network partition: two datacenters diverge while
   disconnected, then reconcile pairwise.  Compares the three strategies
   of Partition_sync (the authors' companion technique [30], built on the
   same join decompositions as the main algorithm):

   - bidirectional full-state exchange (the decomposition-free fallback),
   - state-driven (one full state + one optimal delta),
   - digest-driven (digests + two optimal deltas, no full state at all).

   Run with: dune exec examples/partition_recovery.exe *)

open Crdt_core
module S = Gset.Of_string
module P = Crdt_proto.Partition_sync.Make (S)

let dc_east = Replica_id.of_int 0
let dc_west = Replica_id.of_int 1

let () =
  (* A large session store replicated across two datacenters... *)
  let shared =
    S.of_list
      (List.init 5_000 (fun i -> Printf.sprintf "session-%06d-%032d" i i))
  in
  (* ...diverges while the link is down. *)
  let east =
    List.fold_left
      (fun s i -> S.add (Printf.sprintf "east-login-%d" i) dc_east s)
      shared
      (List.init 20 Fun.id)
  in
  let west =
    List.fold_left
      (fun s i -> S.add (Printf.sprintf "west-login-%d" i) dc_west s)
      shared
      (List.init 5 Fun.id)
  in
  Printf.printf
    "partition healed: east holds %d sessions, west %d (%d shared)\n\n"
    (S.cardinal east) (S.cardinal west) (S.cardinal shared);

  let show name (e, w, (stats : P.stats)) =
    assert (S.equal e w);
    Printf.printf "%-14s %d messages, %s on the wire\n" name stats.messages
      (if stats.bytes >= 1024 then
         Printf.sprintf "%.1f kB" (float_of_int stats.bytes /. 1024.)
       else Printf.sprintf "%d B" stats.bytes)
  in
  show "bidirectional" (P.bidirectional east west);
  show "state-driven" (P.state_driven east west);
  show "digest-driven" (P.digest_driven east west);

  Printf.printf
    "\nDigest-driven reconciliation never ships a full state: both sides\n\
     exchange digests and receive exactly the optimal delta Δ they miss.\n"
