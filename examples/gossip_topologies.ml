(* Reproduce the paper's headline observation interactively: on a
   topology with cycles, classic delta-based synchronization transmits
   about as much as state-based, while BP+RR transmits a fraction of it —
   and on a tree, BP alone is enough (Section V-B, Fig. 7).

   Run with: dune exec examples/gossip_topologies.exe *)

open Crdt_core
open Crdt_sim
module Workload = Crdt_engine.Workload
module H = Harness.Make (Gset.Of_int)

let experiment topo =
  Printf.printf "\n%u-node %s topology (%s):\n" (Topology.size topo)
    (Topology.name topo)
    (if Topology.is_acyclic topo then "acyclic" else "has cycles");
  let nodes = Topology.size topo in
  let outcomes =
    H.run ~topology:topo ~rounds:50
      ~ops:(fun ~round ~node state -> Workload.gset ~nodes ~round ~node state)
      ()
  in
  let baseline = H.baseline outcomes in
  let b = Metrics.total_transmission baseline.Harness.summary in
  List.iter
    (fun (o : Harness.outcome) ->
      let t = Metrics.total_transmission o.summary in
      Printf.printf "  %-15s %8d elements  %5.2fx vs bp+rr  %s\n" o.protocol t
        (float_of_int t /. float_of_int b)
        (if o.converged then "" else "NOT CONVERGED"))
    outcomes

let () =
  print_string
    "Each node adds one unique element to a replicated GSet per round\n\
     (50 rounds), synchronizing with its neighbors once per round.\n";
  experiment (Topology.tree 15);
  experiment (Topology.partial_mesh 15);
  print_newline ()
