(* A miniature Retwis (Twitter clone) running on the replicated store:
   users follow each other and post tweets on one node, and their
   timelines materialize on every other node after synchronization —
   first over classic delta-based sync, then over BP+RR, comparing cost.

   Run with: dune exec examples/retwis_demo.exe *)

open Crdt_core
open Crdt_sim
open Crdt_retwis

let alice = 1
and bob = 2
and carol = 3

(* Script a tiny social scenario as per-round, per-node operations. *)
let script ~round ~node _state : (int * User_state.op) list =
  match (round, node) with
  | 0, 0 ->
      (* bob and carol start following alice. *)
      [ (alice, User_state.Follow bob); (alice, User_state.Follow carol) ]
  | 1, 1 ->
      (* Alice posts from node 1; the post fans out to her followers. *)
      [
        (alice, User_state.Post { tweet_id = "t1"; content = "hello CRDTs" });
        (bob, User_state.Timeline_add { timestamp = 100; tweet_id = "t1" });
        (carol, User_state.Timeline_add { timestamp = 100; tweet_id = "t1" });
      ]
  | 2, 2 ->
      [
        (bob, User_state.Post { tweet_id = "t2"; content = "nice paper" });
      ]
  | _ -> []

module Probe (Cfg : Crdt_proto.Delta_sync.CONFIG) = struct
  module P = Sharded_store.Delta (Cfg)
  module R = Runner.Make (P)

  let run name =
    let topo = Topology.ring 4 in
    let res =
      R.run ~equal:P.equal_states ~topology:topo ~rounds:4 ~ops:script ()
    in
    assert (res.R.converged);
    let s = R.summary res in
    Printf.printf "%-14s transmitted %4d bytes of payload, converged in %d \
                   extra rounds\n"
      name
      s.Crdt_sim.Metrics.total_payload_bytes
      (Array.length res.R.quiesce_rounds);
    res.R.finals.(3)
end

module Classic = Probe (Crdt_proto.Delta_sync.Classic_config)
module BpRr = Probe (Crdt_proto.Delta_sync.Bp_rr_config)

let () =
  print_string "A 4-node ring replicating a tiny social network:\n\n";
  let final = Classic.run "delta-classic" in
  let final' = BpRr.run "delta-bp+rr" in

  (* Read the application state back from a node that never executed any
     of the operations (node 3). *)
  let find user =
    match List.assoc_opt user final with
    | Some st -> st
    | None -> User_state.bottom
  in
  Printf.printf "\nas seen from node 3:\n";
  Printf.printf "  alice's followers: %s\n"
    (String.concat ", "
       (List.map string_of_int (User_state.followers (find alice))));
  List.iter
    (fun (ts, tweet) -> Printf.printf "  bob's timeline: [%d] %s\n" ts tweet)
    (User_state.recent_timeline (find bob));
  let wall = User_state.wall (find bob) in
  List.iter
    (fun (id, reg) ->
      Printf.printf "  bob's wall: %s = %S\n" id (Lww_register.value reg))
    (User_state.Wall.bindings wall);

  (* Both protocols converge to the same application state. *)
  let module P = Sharded_store.Delta (Crdt_proto.Delta_sync.Classic_config) in
  assert (P.equal_states final final');
  Printf.printf "\nclassic and BP+RR agree on the final state.\n"
