(* Selling limited stock without coordination: a bounded counter keeps a
   global non-negativity invariant (never oversell) while every store
   sells from its local replica, offline if need be.

   Rights to sell units are minted at the warehouse (replica 0),
   transferred to stores, and spent locally; replicas synchronize with
   optimal deltas over a ring.

   Run with: dune exec examples/inventory.exe *)

open Crdt_core
open Crdt_sim
module Bc = Bounded_counter
module P = Crdt_proto.Delta_sync.Make (Bc) (Crdt_proto.Delta_sync.Bp_rr_config)
module R = Runner.Make (P)

let warehouse = 0
let stores = [ 1; 2; 3 ]

let () =
  print_string
    "A warehouse mints 90 units of stock and spreads selling rights to\n\
     3 stores; every store sells as fast as its local rights allow.\n\n";
  let topo = Topology.ring 4 in
  let res =
    R.run ~equal:Bc.equal ~topology:topo ~rounds:30
      ~ops:(fun ~round ~node state ->
        ignore state;
        if node = warehouse && round < 9 then
          (* Mint 10 units and hand 3×3 rights to the stores. *)
          Bc.Inc 10
          :: List.map (fun s -> Bc.Transfer { amount = 3; target = s }) stores
        else if node <> warehouse then [ Bc.Dec 2 ]
        else [])
      ()
  in
  assert (res.R.converged);
  let final = res.R.finals.(0) in
  Printf.printf "remaining stock (converged): %d units\n" (Bc.value final);
  List.iter
    (fun s ->
      Printf.printf "  store %d still holds rights for %d units\n" s
        (Bc.rights_of (Replica_id.of_int s) final))
    stores;
  Printf.printf "  warehouse retains rights for %d units\n"
    (Bc.rights_of (Replica_id.of_int warehouse) final);
  assert (Bc.value final >= 0);
  print_string
    "\nEvery sale was decided locally, yet the stock never went negative:\n\
     decrements only spend rights the replica already holds, and rights\n\
     move between replicas through the same delta-synchronized lattice.\n"
