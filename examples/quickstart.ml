(* Quickstart: the library in five minutes.

   Shows the core ideas of the paper on two tiny CRDTs:
   1. state-based replication by joins,
   2. irredundant join decompositions ⇓x,
   3. the optimal delta Δ(a,b) and optimal δ-mutators.

   Run with: dune exec examples/quickstart.exe *)

open Crdt_core

let hr title = Printf.printf "\n--- %s ---\n" title

let () =
  (* Two replicas of a grow-only set of strings. *)
  let module S = Gset.Of_string in
  let alice = Replica_id.of_int 0 and bob = Replica_id.of_int 1 in

  hr "1. replicate by joining states";
  let at_alice = S.add "apple" alice S.bottom in
  let at_bob = S.add "banana" bob (S.add "apple" bob S.bottom) in
  let merged = S.join at_alice at_bob in
  Format.printf "alice: %a@.bob:   %a@.join:  %a@." S.pp at_alice S.pp at_bob
    S.pp merged;

  hr "2. decompose a state into irreducibles (⇓x)";
  List.iter (Format.printf "  irreducible: %a@." S.pp) (S.decompose merged);

  hr "3. ship only the optimal delta Δ(a,b)";
  let module D = Delta.Make (S) in
  (* Bob wants to update Alice: instead of his full state, he sends the
     minimum state that makes a difference at Alice. *)
  let delta = D.delta at_bob at_alice in
  Format.printf "bob's full state: %a (%d elements)@." S.pp at_bob
    (S.weight at_bob);
  Format.printf "optimal delta:    %a (%d elements)@." S.pp delta
    (S.weight delta);
  assert (S.equal (S.join delta at_alice) (S.join at_bob at_alice));

  hr "4. optimal δ-mutators come for free";
  (* addδ returns ⊥ when the element is already present. *)
  Format.printf "add existing 'apple': %a@." S.pp (S.add_delta "apple" merged);
  Format.printf "add new 'cherry':     %a@." S.pp (S.add_delta "cherry" merged);

  hr "5. the same machinery on a counter";
  let p = Gcounter.(inc alice bottom |> inc alice |> inc bob) in
  Format.printf "counter state: %a = %d@." Gcounter.pp p (Gcounter.value p);
  Format.printf "incδ by bob:   %a@." Gcounter.pp (Gcounter.inc_delta bob p);
  List.iter
    (Format.printf "  irreducible: %a@." Gcounter.pp)
    (Gcounter.decompose p);

  print_newline ()
